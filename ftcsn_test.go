package ftcsn

import (
	"testing"

	"ftcsn/internal/maxflow"
)

// TestEndToEnd exercises the full public API surface the way README's
// quickstart does: build, fault, repair, route.
func TestEndToEnd(t *testing.T) {
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs()) != 16 || len(nw.Outputs()) != 16 {
		t.Fatalf("terminals: %d/%d", len(nw.Inputs()), len(nw.Outputs()))
	}

	inst := Inject(nw.G, Symmetric(0.001), 42)
	rt := NewRepairedRouter(inst)
	ok := 0
	for i, in := range nw.Inputs() {
		if _, err := rt.Connect(in, nw.Outputs()[(i+5)%16]); err == nil {
			ok++
		}
	}
	if ok < 15 {
		t.Fatalf("only %d/16 circuits established at ε=0.001", ok)
	}
	if err := rt.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePipeline(t *testing.T) {
	nw, err := Build(DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	out := nw.Evaluate(Symmetric(0), 1, 100)
	if !out.Success {
		t.Fatalf("fault-free pipeline failed: %+v", out)
	}
}

func TestBenesFacade(t *testing.T) {
	bn, err := NewBenes(3)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	paths, err := bn.RoutePermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.VerifyRouting(perm, paths); err != nil {
		t.Fatal(err)
	}
}

func TestSuperconcentratorFacade(t *testing.T) {
	sc, err := NewSuperconcentrator(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	flow := maxflow.VertexDisjointPaths(sc.G, sc.G.Inputs(), sc.G.Outputs())
	if flow != 16 {
		t.Fatalf("saturation flow = %d", flow)
	}
}

// TestTopologyZooFacade exercises the Levels/WrapGraph surface: build a
// permuted-sweep HyperX and a circulant, wrap them, and run the full
// Theorem-2 trial pipeline on each.
func TestTopologyZooFacade(t *testing.T) {
	hx, err := NewHyperX([]int{3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCirculant(8, []int{1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*Graph{"hyperx": hx.G, "circulant": cc.G} {
		lv, err := g.Levels()
		if err != nil {
			t.Fatalf("%s: levels: %v", name, err)
		}
		if lv.Sorted() {
			t.Fatalf("%s: expected a permuted-sweep family (IDs not level-sorted)", name)
		}
		nw, err := WrapGraph(g)
		if err != nil {
			t.Fatalf("%s: wrap: %v", name, err)
		}
		out := nw.Evaluate(Symmetric(0), 1, 50)
		if !out.MajorityAccess {
			t.Fatalf("%s: fault-free majority access failed: %+v", name, out)
		}
	}
}

func TestAccountingFacade(t *testing.T) {
	p := DefaultParams(3)
	a := Accounting(p)
	if a.Edges <= 0 || a.Depth != 12 {
		t.Fatalf("accounting: %+v", a)
	}
	pa := PaperAccounting(2)
	if pa.N != 16 {
		t.Fatalf("paper accounting: %+v", pa)
	}
	if LowerBoundSize(1<<20) <= 0 || LowerBoundDepth(1<<20) <= 0 {
		t.Fatal("lower bounds non-positive")
	}
}

func TestClosFacade(t *testing.T) {
	c, err := NewClos(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsStrictSenseNonblocking() {
		t.Fatal("NewClos not strict")
	}
	rc, err := NewRecursiveClos(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rc.N != 8 || rc.Depth() != 5 {
		t.Fatalf("recursive clos N=%d depth=%d", rc.N, rc.Depth())
	}
	// Both must be fully rearrangeable (flow saturation).
	if flow := maxflow.VertexDisjointPaths(c.G, c.G.Inputs(), c.G.Outputs()); flow != c.N {
		t.Fatalf("clos saturation = %d", flow)
	}
	if flow := maxflow.VertexDisjointPaths(rc.G, rc.G.Inputs(), rc.G.Outputs()); flow != rc.N {
		t.Fatalf("recursive saturation = %d", flow)
	}
}

func TestHierarchyContainment(t *testing.T) {
	// The paper's observation: a nonblocking network is rearrangeable, and
	// a rearrangeable network is a superconcentrator. Operationally: 𝒩
	// must pass the superconcentrator flow test for sampled r.
	nw, err := Build(DefaultParams(1))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		ins := nw.Inputs()[:r]
		outs := nw.Outputs()[4-r:]
		if flow := maxflow.VertexDisjointPaths(nw.G, ins, outs); flow != r {
			t.Fatalf("r=%d: flow %d", r, flow)
		}
	}
}

func TestEngineSeamFacade(t *testing.T) {
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	n := len(nw.Inputs())
	reqs := make([]RouteRequest, n)
	for i := range reqs {
		reqs[i] = RouteRequest{In: nw.Inputs()[i], Out: nw.Outputs()[(i+1)%n]}
	}
	cr := NewConcurrentRouter(nw.G)
	cr.Workers = 2
	engines := []Engine{NewRouter(nw.G), cr, NewShardedEngine(nw.G, 4)}
	for ei, eng := range engines {
		res := eng.ConnectBatch(reqs, nil)
		st := eng.Stats()
		if st.Requests != int64(n) || st.Accepted == 0 {
			t.Fatalf("engine %d: stats %+v", ei, st)
		}
		for i := range res {
			if res[i].Path != nil {
				if err := eng.Disconnect(reqs[i].In, reqs[i].Out); err != nil {
					t.Fatalf("engine %d: %v", ei, err)
				}
			}
		}
	}
}

func TestEvaluatorPoolFacade(t *testing.T) {
	pool := NewEvaluatorPool()
	for round := 0; round < 2; round++ {
		nw, err := Build(DefaultParams(1))
		if err != nil {
			t.Fatal(err)
		}
		ev := pool.NewEvaluator(nw)
		out := ev.Evaluate(Symmetric(0.001), 7, 100)
		if !out.MajorityAccess || out.ChurnFailures != 0 {
			t.Fatalf("round %d: %+v", round, out)
		}
		ev.Release()
	}
	if created, reused := pool.Arenas(); created != 1 || reused != 1 {
		t.Fatalf("pool accounting: created=%d reused=%d", created, reused)
	}
}

// TestOpenLoopFacade runs an end-to-end open-loop serving session purely
// through the public API: composed traffic source, repaired engine,
// virtual-clock Serve, SLO snapshot — and checks the whole run is
// reproducible from its seed.
func TestOpenLoopFacade(t *testing.T) {
	nw, err := Build(DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	inst := Inject(nw.G, Symmetric(0.002), 11)
	run := func() SLOSnapshot {
		eng := NewRepairedShardedEngine(inst, 4)
		src := NewTrafficSource(0xFACADE,
			NewMMPP(1.0, 12.0, 40.0, 5.0),
			NewLognormalHolding(1.0, 0.7),
			NewHotspotPattern(nw.Inputs(), nw.Outputs(), 3, 0.6))
		var slo SLO
		if err := Serve(eng, src, ServeConfig{MaxArrivals: 1500}, &slo); err != nil {
			t.Fatal(err)
		}
		return slo.Snapshot()
	}
	sn := run()
	if sn.Offered != 1500 || sn.Accepted+sn.Rejected != sn.Offered {
		t.Fatalf("arrival accounting broken: %+v", sn)
	}
	if sn.Accepted == 0 || sn.PeakLive == 0 || sn.OfferedLoad <= 0 {
		t.Fatalf("degenerate serving run: %+v", sn)
	}
	if sn.Departed != sn.Accepted || sn.Live != 0 {
		t.Fatalf("unbounded-horizon run should drain: %+v", sn)
	}
	if again := run(); again != sn {
		t.Fatalf("open-loop run not reproducible:\n%+v\n%+v", sn, again)
	}
}
