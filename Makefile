# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race bench experiments experiments-full fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the committed quick-mode experiment tables. Deterministic:
# reruns must leave every probability table bit-identical.
experiments:
	$(GO) run ./cmd/ftbench -mode quick -o EXPERIMENTS.md

# Full-mode tables (larger ν, more trials — minutes, not seconds). Output
# is not committed; the manual-dispatch CI job uploads it as an artifact.
experiments-full:
	$(GO) run ./cmd/ftbench -mode full -o EXPERIMENTS-full.md

fuzz-smoke:
	$(GO) test ./internal/core -run=NONE -fuzz='^FuzzIncrementalRepairMasks$$' -fuzztime=10s
	$(GO) test ./internal/core -run=NONE -fuzz='^FuzzBatchedMajorityAccess$$' -fuzztime=10s
