# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint ftlint bench experiments experiments-full \
	fuzz-smoke bench-ci bench-baseline bench-check ftserve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static contract gate: go vet plus the in-tree ftlint analyzers
# (determinism, hotpath, seamcontract — see internal/analysis). Single
# source of truth: the CI lint job runs exactly this target.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ftlint ./...

# ftlint alone (skip vet), e.g. while iterating on suppressions.
ftlint:
	$(GO) run ./cmd/ftlint ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the committed quick-mode experiment tables. Deterministic:
# reruns must leave every byte identical — the CI determinism job runs
# this and fails on `git diff EXPERIMENTS.md`.
experiments:
	$(GO) run ./cmd/ftbench -mode quick -o EXPERIMENTS.md

# Full-mode tables (larger ν, more trials — minutes, not seconds). Output
# is not committed; the manual-dispatch CI job uploads it as an artifact.
experiments-full:
	$(GO) run ./cmd/ftbench -mode full -o EXPERIMENTS-full.md

# Open-loop serving determinism smoke: the ftserve report must be a pure
# function of its flags, so two fixed-seed runs must be byte-identical
# (and exit clean). CI runs this in the test job.
ftserve-smoke:
	@set -e; \
	$(GO) run ./cmd/ftserve -engine=sharded -seed=7 -eps=0.002 -duration=120 -report=30 > ftserve-a.out; \
	$(GO) run ./cmd/ftserve -engine=sharded -seed=7 -eps=0.002 -duration=120 -report=30 > ftserve-b.out; \
	cmp ftserve-a.out ftserve-b.out || { echo "ftserve report not deterministic"; exit 1; }; \
	$(GO) run ./cmd/ftserve -engine=cas -seed=9 -arrival=mmpp -pattern=hotspot -duration=120 -report=30 > ftserve-a.out; \
	$(GO) run ./cmd/ftserve -engine=cas -seed=9 -arrival=mmpp -pattern=hotspot -duration=120 -report=30 > ftserve-b.out; \
	cmp ftserve-a.out ftserve-b.out || { echo "ftserve report not deterministic"; exit 1; }; \
	rm -f ftserve-a.out ftserve-b.out; \
	echo "ftserve smoke: deterministic"

# --- fuzz smoke -------------------------------------------------------------
# Single source of truth for the fuzz-smoke set: CI invokes this target, so
# adding a fuzzer here is all it takes to gate it everywhere.

FUZZTIME ?= 10s
FUZZERS := \
	./internal/core:FuzzIncrementalRepairMasks \
	./internal/core:FuzzBatchedMajorityAccess \
	./internal/core:FuzzBatchChurnVsPerOp \
	./internal/route:FuzzShardedVsSequential \
	./internal/route:FuzzIncrementalGuide \
	./internal/hyperx:FuzzBuild \
	./internal/circulant:FuzzBuild

fuzz-smoke:
	@set -e; for t in $(FUZZERS); do \
		pkg=$${t%%:*}; fz=$${t##*:}; \
		echo "== fuzz $$fz ($$pkg, $(FUZZTIME))"; \
		$(GO) test $$pkg -run=NONE -fuzz="^$$fz$$" -fuzztime=$(FUZZTIME); \
	done

# --- benchmark regression gate ----------------------------------------------
# The tier-1 gated benchmark set: every hot path with a committed number in
# BENCH.json. bench-ci measures it (-count=6, folded by min per cpu count
# in benchdiff), bench-check gates against the committed baseline (>15%
# ns/op regression at any cpu count, or any allocs/op increase at cpu=1,
# fails), bench-baseline refreshes the baseline.

BENCH_GATED := BenchmarkShardedChurn|BenchmarkShardedChurnParallel|BenchmarkGreedyConnect|BenchmarkEvaluatorTrial|BenchmarkEvaluatorBatchTrial|BenchmarkEvaluatorBatchCertTrial|BenchmarkEvaluatorShardedChurnTrial|BenchmarkZooBatchCertTrial|BenchmarkZooShardedChurnTrial|BenchmarkMonteCarloTheorem2Engine|BenchmarkMonteCarloCertificateEngine|BenchmarkPooledE8WitnessSweep|BenchmarkPooledE10CertSweep|BenchmarkWitnessChecks|BenchmarkOpenLoopServe|BenchmarkIncrementalGuideEpoch
# The multi-core tier: scale-out benchmarks additionally measured at
# -cpu=$(BENCH_CPUS_MULTI), gated per cpu count on ns/op only (parallel
# schedules jitter allocation counts; the alloc gate stays -cpu=1-pinned).
BENCH_GATED_MULTI := BenchmarkShardedChurn|BenchmarkShardedChurnParallel
BENCH_CPUS_MULTI ?= 4,8
BENCH_COUNT ?= 6
BENCH_TIME ?= 0.6s

# -cpu=1 pins the main gated pass to one P: worker-pool benchmarks
# otherwise allocate (and scale) with GOMAXPROCS, which would make the
# allocs/op gate depend on the runner's core count instead of the code.
# The multi-core pass appends cpu-suffixed lines (BenchmarkFoo-4) to the
# same bench.out; benchdiff keys entries per (benchmark, cpu). No pipe: a
# failed benchmark run must fail the target, not hand benchdiff a
# truncated file.
bench-ci:
	$(GO) test -run=NONE -bench '^($(BENCH_GATED))$$' -count=$(BENCH_COUNT) \
		-benchtime=$(BENCH_TIME) -benchmem -cpu=1 . > bench.out || \
		{ cat bench.out; exit 1; }
	$(GO) test -run=NONE -bench '^($(BENCH_GATED_MULTI))$$' -count=$(BENCH_COUNT) \
		-benchtime=$(BENCH_TIME) -benchmem -cpu=$(BENCH_CPUS_MULTI) . >> bench.out || \
		{ cat bench.out; exit 1; }
	@cat bench.out

bench-baseline: bench-ci
	$(GO) run ./cmd/benchdiff -emit -commit "$$(git rev-parse --short HEAD)" \
		< bench.out > BENCH.json
	@echo "wrote BENCH.json"

bench-check: bench-ci
	$(GO) run ./cmd/benchdiff -baseline BENCH.json < bench.out
