// Package ftcsn is a production-quality Go implementation of
//
//	Nicholas Pippenger and Geng Lin,
//	"Fault-Tolerant Circuit-Switching Networks",
//	SIAM J. Discrete Math. 7(1):108–118, 1994 (SPAA 1992).
//
// The paper studies circuit-switching networks under the random switch
// failure model: every switch independently suffers an open failure
// (probability ε), a closed failure (probability ε), or works. It proves
// that fault-tolerant nonblocking networks, rearrangeable networks and
// superconcentrators all require Θ(n (log n)²) switches and Θ(log n)
// depth, and explicitly constructs an optimal fault-tolerant strictly
// nonblocking network (Network 𝒩).
//
// This package is the stable public API; it re-exports the core types
// from the internal packages:
//
//   - Build / Params: the paper's Network 𝒩 (§6, Fig. 5, Theorem 2), a
//     fault-tolerant strictly nonblocking network built from directed
//     grids (Moore–Shannon hammocks) and expanding graphs;
//   - NewBenes: the Beneš rearrangeable baseline with the looping
//     routing algorithm;
//   - NewSuperconcentrator: linear-size superconcentrators with
//     max-flow verification;
//   - Symmetric / Inject: the random switch failure model;
//   - NewRouter / NewRepairedRouter: greedy circuit routing (§4);
//   - Evaluate: the end-to-end Theorem-2 pipeline
//     (inject → discard repair → majority-access certificate → churn).
//
// Beyond the paper's trials, the package tells an operational-serving
// story: the open-loop traffic subsystem drives any Engine with
// production-shaped session traffic under a deterministic virtual clock.
// A TrafficSource composes an arrival process (NewPoisson, NewMMPP
// bursts, NewDiurnal modulation), a holding-time distribution
// (NewExpHolding, NewLognormalHolding, NewParetoHolding tails), and a
// destination pattern (NewUniformPattern, NewHotspotPattern,
// NewPermutationPattern) over one seeded rng stream; Serve replays the
// stream against an engine, batching due arrivals and scheduling
// departures; and SLO streams the serving quality out — rejection rate,
// live-circuit gauge, offered load in Erlangs, p50/p99/p999 connect
// latency in events-behind terms — cumulatively and in windows. The
// whole loop is wall-clock-free and byte-reproducible from (seed,
// config); cmd/ftserve is the long-running harness over it, sustaining
// overload regimes the closed-loop Theorem-2 churn never enters.
//
// The experiment harness reproducing every quantitative claim of the
// paper lives in internal/experiments and is driven by cmd/ftbench; see
// DESIGN.md and EXPERIMENTS.md.
package ftcsn

import (
	"ftcsn/internal/benes"
	"ftcsn/internal/circulant"
	"ftcsn/internal/clos"
	"ftcsn/internal/core"
	"ftcsn/internal/fault"
	"ftcsn/internal/graph"
	"ftcsn/internal/hyperx"
	"ftcsn/internal/netsim"
	"ftcsn/internal/rng"
	"ftcsn/internal/route"
	"ftcsn/internal/stats"
	"ftcsn/internal/superconc"
)

// Params configures Network 𝒩; see core.Params for field documentation.
type Params = core.Params

// Network is a materialized Network 𝒩.
type Network = core.Network

// TrialOutcome is the result of one fault-tolerance trial.
type TrialOutcome = core.TrialOutcome

// Evaluator is the reusable, allocation-free Theorem-2 trial engine: it
// owns every per-trial buffer (fault instance, repair masks, access
// checker, pooled router) for one network. Hold one per goroutine.
type Evaluator = core.Evaluator

// FaultModel holds the per-switch failure probabilities (ε₁, ε₂).
type FaultModel = fault.Model

// FaultInstance is one random realization of switch states.
type FaultInstance = fault.Instance

// Router serves connect/disconnect requests with greedy path-finding.
type Router = route.Router

// ShardedEngine serves batches of connection requests across shards with
// sequential-router semantics: accept/reject decisions and established
// paths are bit-identical to Router processing the batch in order, at any
// shard count. See internal/route and DESIGN.md §2.7.
type ShardedEngine = route.ShardedEngine

// ConcurrentRouter serves batches with one CAS-claiming goroutine per
// worker — the distributed-path-selection analogue measured by E9.
type ConcurrentRouter = route.ConcurrentRouter

// Engine is the uniform seam over the three path-hunting engines (Router,
// ConcurrentRouter, ShardedEngine): ConnectBatch / Disconnect / PathOf /
// Reset / Stats plus shared-mask adoption. The Theorem-2 trial pipeline
// drives its churn through this seam (Evaluator.SetChurnEngine); see
// DESIGN.md §2.8.
type Engine = route.Engine

// EngineStats is the engine-neutral cumulative serving record.
type EngineStats = route.EngineStats

// EvaluatorPool recycles per-worker trial scratch arenas across the
// networks of a multi-network experiment; see DESIGN.md §2.8 for the
// ownership rules.
type EvaluatorPool = core.EvaluatorPool

// RouteRequest asks for a circuit In → Out; RouteResult reports one
// request's outcome (Path == nil means rejected).
type RouteRequest = route.Request

// RouteResult is the per-request outcome of a routed batch.
type RouteResult = route.Result

// Graph is the underlying immutable switch-network graph.
type Graph = graph.Graph

// Levels is a graph's cached topological leveling — the contract behind
// every fast path (word-parallel certification, sharded prefilter and
// probe guide, level-ordered sweeps): obtain it with Graph.Levels(). On
// fully staged, stage-monotone graphs (Network 𝒩 and friends) the
// leveling is the stage assignment verbatim, so historical results are
// bit-identical by construction; any other DAG gets longest-path levels.
// See DESIGN.md §2.9.
type Levels = graph.Levels

// Benes is the Beneš rearrangeable baseline network.
type Benes = benes.Network

// Superconcentrator is the linear-size superconcentrator substrate.
type Superconcentrator = superconc.Network

// Build materializes the paper's Network 𝒩 for the given parameters.
func Build(p Params) (*Network, error) { return core.Build(p) }

// DefaultParams returns laptop-scale parameters preserving the paper's
// structure for n = 4^nu terminals.
func DefaultParams(nu int) Params { return core.DefaultParams(nu) }

// PaperParams returns the paper-faithful constants (huge; typically used
// only with Accounting).
func PaperParams(nu int) Params { return core.PaperParams(nu) }

// Accounting returns closed-form size/depth for parameters without
// materializing the network.
func Accounting(p Params) core.Acct { return core.Accounting(p) }

// PaperAccounting reports the paper-constant sizes (Theorem 2 accounting).
func PaperAccounting(nu int) core.PaperAcct { return core.PaperAccounting(nu) }

// Symmetric returns the paper's symmetric failure model ε₁ = ε₂ = ε.
func Symmetric(eps float64) FaultModel { return fault.Symmetric(eps) }

// Inject draws a random fault instance for g under model m, seeded
// deterministically.
func Inject(g *Graph, m FaultModel, seed uint64) *FaultInstance {
	return fault.Inject(g, m, rng.New(seed))
}

// NewEvaluator returns a reusable trial evaluator for nw; repeated
// Evaluate / EvaluateInto calls allocate nothing in steady state.
func NewEvaluator(nw *Network) *Evaluator { return core.NewEvaluator(nw) }

// NewEvaluatorPool returns a scratch pool for multi-network experiment
// sweeps: pool.NewEvaluator(nw) draws a pooled evaluator, Release recycles
// its buffers for the next network.
func NewEvaluatorPool() *EvaluatorPool { return core.NewEvaluatorPool() }

// NewConcurrentRouter returns a CAS-claiming batch router over the
// fault-free network (set Workers for the engine-seam goroutine count).
func NewConcurrentRouter(g *Graph) *ConcurrentRouter { return route.NewConcurrentRouter(g) }

// NewRouter returns a greedy circuit router over the fault-free network.
func NewRouter(g *Graph) *Router { return route.NewRouter(g) }

// NewRepairedRouter returns a router over the network repaired from inst
// by the paper's rule: discard every faulty non-terminal vertex.
func NewRepairedRouter(inst *FaultInstance) *Router { return route.NewRepairedRouter(inst) }

// NewShardedEngine returns a sharded batch-routing engine over the
// fault-free network with the given shard count; panics if shards <= 0.
// Engines with more than one shard lazily start persistent worker
// goroutines on the first large batch; Close stops them (a finalizer
// backstops engines that are simply dropped).
func NewShardedEngine(g *Graph, shards int) *ShardedEngine {
	return route.NewShardedEngine(g, shards)
}

// NewRepairedShardedEngine is NewShardedEngine over the network repaired
// from inst by the paper's discard rule. Panics if shards <= 0.
func NewRepairedShardedEngine(inst *FaultInstance, shards int) *ShardedEngine {
	return route.NewRepairedShardedEngine(inst, shards)
}

// NewBenes builds the Beneš rearrangeable network on 2^k terminals.
func NewBenes(k int) (*Benes, error) { return benes.New(k) }

// NewSuperconcentrator builds an n-superconcentrator with concentrator
// degree d.
func NewSuperconcentrator(n, d int, seed uint64) (*Superconcentrator, error) {
	return superconc.New(n, d, seed)
}

// WrapGraph adapts any acyclic switch graph with marked terminals to the
// Network interface by treating its topological levels as stages, so the
// whole trial pipeline — batched injection, word-parallel certification,
// sharded churn — runs on arbitrary DAG topologies (Mirror() images,
// superconcentrators, hammock substitutions, HyperX, circulants) exactly
// as it does on Network 𝒩.
func WrapGraph(g *Graph) (*Network, error) { return core.WrapGraph(g) }

// HyperX is a DAG-unrolled HyperX interconnect (hold + per-dimension
// crossbar edges per hop).
type HyperX = hyperx.Network

// NewHyperX builds the DAG unrolling of the HyperX topology with the
// given per-dimension router counts, depth hops deep.
func NewHyperX(dims []int, depth int) (*HyperX, error) { return hyperx.New(dims, depth) }

// Circulant is a DAG-unrolled circulant graph C(n; strides).
type Circulant = circulant.Network

// NewCirculant builds the DAG unrolling of the circulant graph C(n;
// strides), depth hops deep.
func NewCirculant(n int, strides []int, depth int) (*Circulant, error) {
	return circulant.New(n, strides, depth)
}

// Clos is a three-stage Clos network.
type Clos = clos.Network

// NewClos builds the minimal strictly nonblocking Clos network for
// N = r·n₀ terminals (Clos's theorem: m = 2n₀−1 middles).
func NewClos(n0, r int) (*Clos, error) { return clos.NewStrict(n0, r) }

// RecursiveClos is the multi-stage strictly nonblocking Clos recursion.
type RecursiveClos = clos.RecursiveNetwork

// NewRecursiveClos builds a strictly nonblocking network on n₀^levels
// terminals with depth 2·levels−1 — the O(n^(1+1/k)) depth-vs-size
// frontier the paper's construction refines with expanders.
func NewRecursiveClos(n0, levels int) (*RecursiveClos, error) {
	return clos.NewRecursive(n0, levels)
}

// LowerBoundSize is Theorem 1's Ω(n log²n) size bound: n(log₂n)²/2688.
func LowerBoundSize(n int) float64 { return core.LowerBoundSize(n) }

// LowerBoundDepth is Theorem 1's Ω(log n) depth bound: (log₂n)/6.
func LowerBoundDepth(n int) float64 { return core.LowerBoundDepth(n) }

// --- open-loop traffic subsystem --------------------------------------------

// Arrival is one session-arrival event in virtual time; it carries its
// own departure (At + Hold).
type Arrival = netsim.Arrival

// Source is the traffic seam: a deterministic, pull-driven stream of
// timestamped arrivals.
type Source = netsim.Source

// TrafficSource composes an arrival process, a holding-time
// distribution, and a destination pattern over one seeded rng stream.
type TrafficSource = netsim.TrafficSource

// ArrivalProcess generates inter-arrival gaps; HoldingDist generates
// session holding times; Pattern generates destination pairs. All draw
// only from the rng stream they are handed.
type (
	ArrivalProcess = netsim.ArrivalProcess
	HoldingDist    = netsim.HoldingDist
	Pattern        = netsim.Pattern
)

// ServeConfig bounds and instruments an open-loop serving run; ServeLoop
// is the reusable zero-steady-state-alloc event loop behind Serve.
type (
	ServeConfig = netsim.ServeConfig
	ServeLoop   = netsim.Loop
)

// SLO accumulates SLO-grade serving statistics (rejection rate, live
// circuits, offered load, events-behind latency quantiles) cumulatively
// and in windows; SLOSnapshot is one summarized scope. LatencyHist is
// the underlying fixed-footprint log-scale histogram.
type (
	SLO         = stats.SLO
	SLOSnapshot = stats.SLOSnapshot
	LatencyHist = stats.LogHist
)

// NewTrafficSource composes the three traffic pieces into a Source whose
// (seed, config) pair reproduces its event stream bit for bit.
func NewTrafficSource(seed uint64, arr ArrivalProcess, hold HoldingDist, pat Pattern) *TrafficSource {
	return netsim.NewTrafficSource(seed, arr, hold, pat)
}

// NewPoisson returns homogeneous Poisson arrivals at the given rate.
func NewPoisson(rate float64) ArrivalProcess { return netsim.NewPoisson(rate) }

// NewMMPP returns two-state Markov-modulated (bursty) Poisson arrivals.
func NewMMPP(baseRate, burstRate, meanBase, meanBurst float64) ArrivalProcess {
	return netsim.NewMMPP(baseRate, burstRate, meanBase, meanBurst)
}

// NewDiurnal returns sinusoidally modulated arrivals: rate(t) =
// base·(1 + depth·sin(2πt/period)).
func NewDiurnal(base, depth, period float64) ArrivalProcess {
	return netsim.NewDiurnal(base, depth, period)
}

// NewExpHolding returns exponential holding times with the given mean.
func NewExpHolding(mean float64) HoldingDist { return netsim.NewExpHolding(mean) }

// NewLognormalHolding returns lognormal holding times (mean
// exp(mu + sigma²/2)).
func NewLognormalHolding(mu, sigma float64) HoldingDist {
	return netsim.NewLognormalHolding(mu, sigma)
}

// NewParetoHolding returns Pareto heavy-tail holding times.
func NewParetoHolding(shape, scale float64) HoldingDist {
	return netsim.NewParetoHolding(shape, scale)
}

// NewUniformPattern draws (input, output) pairs uniformly.
func NewUniformPattern(inputs, outputs []int32) Pattern {
	return netsim.NewUniformPattern(inputs, outputs)
}

// NewHotspotPattern routes a hotFrac share of traffic to the first
// hotCount outputs.
func NewHotspotPattern(inputs, outputs []int32, hotCount int, hotFrac float64) Pattern {
	return netsim.NewHotspotPattern(inputs, outputs, hotCount, hotFrac)
}

// NewPermutationPattern fixes a seeded random one-to-one input→output
// mapping and draws inputs uniformly.
func NewPermutationPattern(inputs, outputs []int32) Pattern {
	return netsim.NewPermutationPattern(inputs, outputs)
}

// Serve replays src against eng under a virtual clock, recording every
// event in slo; see netsim.Loop.Serve for the full contract.
func Serve(eng Engine, src Source, cfg ServeConfig, slo *SLO) error {
	return netsim.Serve(eng, src, cfg, slo)
}
