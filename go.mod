module ftcsn

go 1.21
